(* Mp_obs: unit tests for the probe primitives, the determinism contract
   (tracing does not change scheduler output) and lossless merging of the
   per-domain buffers under the Pool.

   The obs registry and buffers are process-global, so every test starts
   from [Mp_obs.reset ()] and runs the observed section under
   [Mp_obs.with_enabled]. *)

module Obs = Mp_obs
module Rng = Mp_prelude.Rng
module Pool = Mp_prelude.Pool
module Dag_gen = Mp_dag.Dag_gen
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

let counter_value snap name =
  match List.assoc_opt name snap.Obs.Snapshot.counters with Some v -> v | None -> 0

let hist_opt snap name =
  List.find_opt (fun h -> h.Obs.Snapshot.hist_name = name) snap.Obs.Snapshot.hists

let events_named snap name =
  List.filter (fun e -> e.Obs.Snapshot.span_name = name) snap.Obs.Snapshot.events

(* ------------------------------------------------------------------ *)
(* Counters *)

let c_unit = Obs.Counter.make "test.counter.unit"
let c_disabled = Obs.Counter.make "test.counter.disabled"

let test_counter_incr_add () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      for _ = 1 to 5 do
        Obs.Counter.incr c_unit
      done;
      Obs.Counter.add c_unit 37);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "5 incrs + add 37" 42 (counter_value snap "test.counter.unit")

let test_counter_disabled_is_noop () =
  Obs.reset ();
  Obs.Counter.incr c_disabled;
  Obs.Counter.add c_disabled 100;
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "disabled counter stays 0" 0 (counter_value snap "test.counter.disabled")

let test_reset_zeroes () =
  Obs.reset ();
  Obs.with_enabled (fun () -> Obs.Counter.incr c_unit);
  Obs.reset ();
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "reset zeroes counters" 0 (counter_value snap "test.counter.unit")

(* ------------------------------------------------------------------ *)
(* Timers / histograms *)

let t_unit = Obs.Timer.make "test.timer.unit"

let test_timer_records () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      for _ = 1 to 10 do
        let t0 = Obs.Timer.start () in
        (* burn a little time so elapsed > 0 *)
        let s = ref 0 in
        for i = 1 to 1000 do
          s := !s + i
        done;
        ignore (Sys.opaque_identity !s);
        Obs.Timer.stop t_unit t0
      done);
  let snap = Obs.Snapshot.take () in
  match hist_opt snap "test.timer.unit" with
  | None -> Alcotest.fail "timer histogram missing"
  | Some h ->
      Alcotest.(check int) "10 samples" 10 h.count;
      Alcotest.(check bool) "total >= max" true (h.total_ns >= h.max_ns);
      Alcotest.(check int) "bucket counts sum to count" h.count (Array.fold_left ( + ) 0 h.buckets)

let test_timer_disabled_start_is_zero () =
  Obs.reset ();
  Alcotest.(check int) "start () = 0 when disabled" 0 (Obs.Timer.start ());
  (* a t0 of 0 (started while disabled) must be dropped even if the switch
     flips before the stop *)
  Obs.with_enabled (fun () -> Obs.Timer.stop t_unit 0);
  let snap = Obs.Snapshot.take () in
  match hist_opt snap "test.timer.unit" with
  | None -> ()
  | Some h -> Alcotest.(check int) "no sample from disabled start" 0 h.count

let test_percentile_from_buckets () =
  (* hand-built histogram: 90 samples in bucket 4 ([16,32) ns), 10 in
     bucket 10 ([1024,2048) ns) *)
  let buckets = Array.make 64 0 in
  buckets.(4) <- 90;
  buckets.(10) <- 10;
  let h =
    { Obs.Snapshot.hist_name = "hand"; count = 100; total_ns = 0; max_ns = 2047; buckets }
  in
  let p50 = Obs.Snapshot.percentile h 0.5 in
  let p99 = Obs.Snapshot.percentile h 0.99 in
  Alcotest.(check bool) "p50 inside [16,32)" true (p50 >= 16. && p50 < 32.);
  Alcotest.(check bool) "p99 inside [1024,2048)" true (p99 >= 1024. && p99 < 2048.);
  let empty = { h with count = 0; buckets = Array.make 64 0 } in
  Alcotest.(check bool) "empty hist -> nan" true (Float.is_nan (Obs.Snapshot.percentile empty 0.5))

(* ------------------------------------------------------------------ *)
(* Standalone histograms and exact summaries *)

let test_hist_basics () =
  let h = Obs.Hist.create () in
  Alcotest.(check int) "fresh count" 0 (Obs.Hist.count h);
  Alcotest.(check bool) "fresh percentile is nan" true
    (Float.is_nan (Obs.Hist.percentile h 0.5));
  List.iter (Obs.Hist.add h) [ 1; 20; 20; 1500; -5 ];
  Alcotest.(check int) "count" 5 (Obs.Hist.count h);
  (* -5 clamps to 0, so the total is 1 + 20 + 20 + 1500 *)
  Alcotest.(check int) "total (negatives clamp to 0)" 1541 (Obs.Hist.total h);
  Alcotest.(check int) "max sample" 1500 (Obs.Hist.max_sample h);
  let buckets = Obs.Hist.buckets h in
  Alcotest.(check int) "64 buckets" 64 (Array.length buckets);
  Alcotest.(check int) "bucket counts sum to count" 5 (Array.fold_left ( + ) 0 buckets);
  Alcotest.(check int) "0 and 1 land in bucket 0" 2 buckets.(0);
  Alcotest.(check int) "20s land in [16,32)" 2 buckets.(4);
  (* sorted samples: 0 1 20 20 1500 — the median lives in [16,32) *)
  let p50 = Obs.Hist.percentile h 0.5 in
  Alcotest.(check bool) "p50 inside [16,32)" true (p50 >= 16. && p50 < 32.);
  (* buckets returns a copy: scribbling on it must not corrupt the hist *)
  buckets.(0) <- 999;
  Alcotest.(check int) "buckets is a copy" 2 (Obs.Hist.buckets h).(0)

let test_hist_merge_and_clear () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  List.iter (Obs.Hist.add a) [ 3; 3 ];
  List.iter (Obs.Hist.add b) [ 1_000_000 ];
  Obs.Hist.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 3 (Obs.Hist.count a);
  Alcotest.(check int) "merged total" 1_000_006 (Obs.Hist.total a);
  Alcotest.(check int) "merged max" 1_000_000 (Obs.Hist.max_sample a);
  Alcotest.(check int) "source untouched" 1 (Obs.Hist.count b);
  (* the percentile estimate clamps to the observed max *)
  Alcotest.(check bool) "p100 clamps to max" true
    (Obs.Hist.percentile a 1.0 <= 1_000_000.);
  Obs.Hist.clear a;
  Alcotest.(check int) "clear zeroes count" 0 (Obs.Hist.count a);
  Alcotest.(check int) "clear zeroes total" 0 (Obs.Hist.total a);
  Alcotest.(check int) "clear zeroes buckets" 0
    (Array.fold_left ( + ) 0 (Obs.Hist.buckets a))

let test_summary_percentiles () =
  (* nearest-rank on a sorted 0..999 array: p must index floor(q*n) *)
  let a = Array.init 1000 (fun i -> i) in
  Alcotest.(check int) "p50 of 0..999" 500 (Obs.Summary.percentile a 0.5);
  Alcotest.(check int) "p99 of 0..999" 990 (Obs.Summary.percentile a 0.99);
  Alcotest.(check int) "p999 of 0..999" 999 (Obs.Summary.percentile a 0.999);
  Alcotest.(check int) "p0 of 0..999" 0 (Obs.Summary.percentile a 0.0);
  Alcotest.(check int) "empty array -> 0" 0 (Obs.Summary.percentile [||] 0.5)

let test_summary_of_samples () =
  let input = [| 5; 1; 4; 2; 3 |] in
  let s = Obs.Summary.of_samples input in
  Alcotest.(check int) "count" 5 s.Obs.Summary.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Obs.Summary.mean;
  Alcotest.(check int) "p50" 3 s.Obs.Summary.p50;
  Alcotest.(check int) "p99 is the top sample" 5 s.Obs.Summary.p99;
  Alcotest.(check int) "p999 is the top sample" 5 s.Obs.Summary.p999;
  Alcotest.(check int) "max" 5 s.Obs.Summary.max;
  Alcotest.(check (array int)) "input not mutated" [| 5; 1; 4; 2; 3 |] input;
  let empty = Obs.Summary.of_list [] in
  Alcotest.(check int) "empty count" 0 empty.Obs.Summary.count;
  Alcotest.(check int) "empty p999" 0 empty.Obs.Summary.p999;
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 empty.Obs.Summary.mean

(* ------------------------------------------------------------------ *)
(* Spans *)

let sp_outer = Obs.Span.make "test.span.outer"
let sp_inner = Obs.Span.make "test.span.inner"

let test_span_nesting () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Span.enter sp_outer;
      Obs.Span.enter sp_inner;
      Obs.Span.exit sp_inner;
      Obs.Span.exit sp_outer);
  let snap = Obs.Snapshot.take () in
  let outer = events_named snap "test.span.outer" in
  let inner = events_named snap "test.span.inner" in
  Alcotest.(check int) "one outer event" 1 (List.length outer);
  Alcotest.(check int) "one inner event" 1 (List.length inner);
  let o = List.hd outer and i = List.hd inner in
  Alcotest.(check bool) "inner starts after outer" true (i.start_ns >= o.start_ns);
  Alcotest.(check bool) "inner nested in outer" true
    (i.start_ns + i.dur_ns <= o.start_ns + o.dur_ns);
  Alcotest.(check bool) "events sorted by start" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Obs.Snapshot.start_ns <= b.Obs.Snapshot.start_ns && sorted rest
       | _ -> true
     in
     sorted snap.events)

let test_span_wrap_on_exception () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      (try Obs.Span.wrap sp_outer (fun () -> failwith "boom") with Failure _ -> ());
      (* the stack must be balanced again: a fresh span still records *)
      Obs.Span.wrap sp_inner Fun.id);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "exceptional wrap recorded" 1 (List.length (events_named snap "test.span.outer"));
  Alcotest.(check int) "stack balanced after exception" 1
    (List.length (events_named snap "test.span.inner"))

let test_span_unmatched_exit_dropped () =
  Obs.reset ();
  Obs.with_enabled (fun () -> Obs.Span.exit sp_outer);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "unmatched exit dropped" 0 (List.length snap.events)

let test_event_cap_counts_drops () =
  Obs.reset ();
  Obs.set_event_cap 8;
  Obs.with_enabled (fun () ->
      for _ = 1 to 20 do
        Obs.Span.wrap sp_outer Fun.id
      done);
  let snap = Obs.Snapshot.take () in
  Obs.set_event_cap 1_000_000;
  Alcotest.(check int) "events capped" 8 (List.length snap.events);
  Alcotest.(check int) "drops counted" 12 (counter_value snap "obs.events.dropped")

let test_tag_stamps_events () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Tag.set ~req:42 ~site:3;
      Obs.Span.wrap sp_outer Fun.id;
      Obs.Tag.clear ();
      Obs.Span.wrap sp_inner Fun.id);
  let snap = Obs.Snapshot.take () in
  (match events_named snap "test.span.outer" with
  | [ e ] ->
      Alcotest.(check (option (pair int int))) "tagged event carries (req, site)"
        (Some (42, 3)) e.Obs.Snapshot.tag
  | es -> Alcotest.failf "expected one tagged event, got %d" (List.length es));
  (match events_named snap "test.span.inner" with
  | [ e ] ->
      Alcotest.(check (option (pair int int))) "cleared tag -> None" None e.Obs.Snapshot.tag
  | es -> Alcotest.failf "expected one untagged event, got %d" (List.length es));
  (* the Chrome trace surfaces the tag as event args *)
  let trace = Obs.Trace.to_chrome snap in
  let contains hay needle = Re.execp (Re.compile (Re.str needle)) hay in
  Alcotest.(check bool) "trace has tag args" true
    (contains trace "\"args\":{\"req\":42,\"site\":3}")

let test_tag_cleared_by_reset () =
  Obs.reset ();
  Obs.with_enabled (fun () -> Obs.Tag.set ~req:7 ~site:0);
  Obs.reset ();
  Obs.with_enabled (fun () -> Obs.Span.wrap sp_outer Fun.id);
  let snap = Obs.Snapshot.take () in
  match events_named snap "test.span.outer" with
  | [ e ] -> Alcotest.(check (option (pair int int))) "reset clears tags" None e.Obs.Snapshot.tag
  | es -> Alcotest.failf "expected one event, got %d" (List.length es)

(* The zero-overhead contract: with the switch off, every probe —
   counters, timers, spans, tags — is one load-and-branch with no
   allocation.  Gc.minor_words is exact in native code; the slack only
   covers the two boxed floats the measurement itself allocates. *)
let test_disabled_probes_do_not_allocate () =
  Obs.reset ();
  Alcotest.(check bool) "tracing is off" false !Obs.enabled;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Obs.Counter.incr c_unit;
    Obs.Counter.add c_unit i;
    let t0 = Obs.Timer.start () in
    Obs.Timer.stop t_unit t0;
    Obs.Span.enter sp_outer;
    Obs.Span.exit sp_outer;
    Obs.Tag.set ~req:i ~site:0;
    Obs.Tag.clear ()
  done;
  let after = Gc.minor_words () in
  Alcotest.(check bool) "disabled probes allocate nothing" true (after -. before < 256.)

(* ------------------------------------------------------------------ *)
(* Snapshot.sub, Report, Trace *)

let test_snapshot_sub () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Counter.add c_unit 3;
      Obs.Span.wrap sp_outer Fun.id);
  let earlier = Obs.Snapshot.take () in
  Obs.with_enabled (fun () ->
      Obs.Counter.add c_unit 4;
      Obs.Span.wrap sp_outer Fun.id;
      let t0 = Obs.Timer.start () in
      Obs.Timer.stop t_unit t0);
  let later = Obs.Snapshot.take () in
  let d = Obs.Snapshot.sub later ~earlier in
  Alcotest.(check int) "counter delta" 4 (counter_value d "test.counter.unit");
  Alcotest.(check int) "event delta" 1 (List.length (events_named d "test.span.outer"));
  match hist_opt d "test.timer.unit" with
  | None -> Alcotest.fail "timer delta missing"
  | Some h -> Alcotest.(check int) "hist delta count" 1 h.count

let test_report_and_trace () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Counter.add c_unit 7;
      let t0 = Obs.Timer.start () in
      Obs.Timer.stop t_unit t0;
      Obs.Span.wrap sp_outer Fun.id);
  let snap = Obs.Snapshot.take () in
  let text = Obs.Report.text snap in
  let contains hay needle =
    let re = Re.compile (Re.str needle) in
    Re.execp re hay
  in
  Alcotest.(check bool) "text mentions counter" true (contains text "test.counter.unit");
  Alcotest.(check bool) "text mentions timer" true (contains text "test.timer.unit");
  let json = Obs.Report.to_json snap in
  Alcotest.(check bool) "json schema tag" true (contains json "mpres-obs-1");
  Alcotest.(check bool) "json has p95" true (contains json "p95_ns");
  let trace = Obs.Trace.to_chrome snap in
  Alcotest.(check bool) "trace has traceEvents" true (contains trace "traceEvents");
  Alcotest.(check bool) "trace has complete events" true (contains trace "\"ph\":\"X\"");
  Alcotest.(check bool) "trace names domain tracks" true (contains trace "thread_name");
  Alcotest.(check bool) "empty snapshot -> empty report" true (Obs.Report.text (Obs.Snapshot.sub snap ~earlier:snap) = "")

(* ------------------------------------------------------------------ *)
(* Determinism: tracing must not change scheduler output *)

let busy_env ?(p = 8) ?(n_res = 10) seed =
  let rng = Rng.create seed in
  let rec add cal k =
    if k = 0 then cal
    else begin
      let start = Rng.int rng 40_000 in
      let dur = 600 + Rng.int rng 4_000 in
      let procs = 1 + Rng.int rng (p / 2) in
      match Calendar.reserve_opt cal (Reservation.make ~start ~finish:(start + dur) ~procs) with
      | Some cal -> add cal (k - 1)
      | None -> add cal (k - 1)
    end
  in
  let calendar = add (Calendar.create ~procs:p) n_res in
  Env.make ~calendar ~q:(Calendar.average_available calendar ~from_:0 ~until:40_000)

let test_tracing_does_not_change_schedules =
  QCheck.Test.make ~count:25 ~name:"tracing does not change scheduler output"
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let env = busy_env (s1 + 1) in
      let dag = Dag_gen.generate (Rng.create (s2 + 1)) { Dag_gen.default with n = 15 } in
      let blind = Ressched.schedule env dag in
      Obs.reset ();
      let traced = Obs.with_enabled (fun () -> Ressched.schedule env dag) in
      Obs.reset ();
      blind = traced)

(* ------------------------------------------------------------------ *)
(* Concurrency: per-domain buffers merge losslessly under the Pool *)

let c_par = Obs.Counter.make "test.par.counter"
let t_par = Obs.Timer.make "test.par.timer"
let sp_par = Obs.Span.make "test.par.span"

let merge_under_pool jobs () =
  Obs.reset ();
  let n = 200 in
  let items = Array.init n (fun i -> i) in
  let out =
    (* the Static executor pins item i to worker i mod jobs, so every
       worker domain is guaranteed to record events — under the stealing
       default a fast caller can legally drain the whole batch alone,
       which would make the >1-domain assertion below racy *)
    Obs.with_enabled (fun () ->
        Pool.with_pool ~strategy:Pool.Static ~jobs (fun p ->
            Pool.map_array p
              (fun i ->
                Obs.Span.wrap sp_par @@ fun () ->
                Obs.Counter.add c_par i;
                let t0 = Obs.Timer.start () in
                Obs.Timer.stop t_par t0;
                i * 2)
              items))
  in
  Alcotest.(check int) "results merged in order" (n * (n - 1))
    (Array.fold_left ( + ) 0 out);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "no events dropped" 0 (counter_value snap "obs.events.dropped");
  Alcotest.(check int) "counter adds all merged" (n * (n - 1) / 2)
    (counter_value snap "test.par.counter");
  (match hist_opt snap "test.par.timer" with
  | None -> Alcotest.fail "parallel timer histogram missing"
  | Some h -> Alcotest.(check int) "timer samples all merged" n h.count);
  let cell_events = events_named snap "test.par.span" in
  Alcotest.(check int) "span events all merged" n (List.length cell_events);
  (* with several workers the events must span more than one domain track *)
  let domains =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Snapshot.domain) cell_events)
  in
  if jobs > 1 then
    Alcotest.(check bool) "events from more than one domain" true (List.length domains > 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mp_obs"
    [
      ( "counter",
        [
          Alcotest.test_case "incr and add" `Quick test_counter_incr_add;
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled_is_noop;
          Alcotest.test_case "reset zeroes" `Quick test_reset_zeroes;
        ] );
      ( "timer",
        [
          Alcotest.test_case "records samples" `Quick test_timer_records;
          Alcotest.test_case "disabled start is dropped" `Quick test_timer_disabled_start_is_zero;
          Alcotest.test_case "percentiles from buckets" `Quick test_percentile_from_buckets;
        ] );
      ( "hist",
        [
          Alcotest.test_case "basics" `Quick test_hist_basics;
          Alcotest.test_case "merge and clear" `Quick test_hist_merge_and_clear;
        ] );
      ( "summary",
        [
          Alcotest.test_case "nearest-rank percentiles" `Quick test_summary_percentiles;
          Alcotest.test_case "of_samples" `Quick test_summary_of_samples;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "wrap on exception" `Quick test_span_wrap_on_exception;
          Alcotest.test_case "unmatched exit dropped" `Quick test_span_unmatched_exit_dropped;
          Alcotest.test_case "event cap counts drops" `Quick test_event_cap_counts_drops;
          Alcotest.test_case "tag stamps events" `Quick test_tag_stamps_events;
          Alcotest.test_case "tag cleared by reset" `Quick test_tag_cleared_by_reset;
          Alcotest.test_case "disabled probes do not allocate" `Quick
            test_disabled_probes_do_not_allocate;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "sub gives section deltas" `Quick test_snapshot_sub;
          Alcotest.test_case "report and trace render" `Quick test_report_and_trace;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest test_tracing_does_not_change_schedules ] );
      ( "concurrency",
        [
          Alcotest.test_case "merge under pool, jobs=2" `Quick (merge_under_pool 2);
          Alcotest.test_case "merge under pool, jobs=4" `Quick (merge_under_pool 4);
        ] );
    ]
