open Mp_platform

(* ------------------------------------------------------------------ *)
(* Reservation *)

let test_reservation_basics () =
  let r = Reservation.make ~start:10 ~finish:30 ~procs:4 in
  Alcotest.(check int) "duration" 20 (Reservation.duration r);
  Alcotest.(check int) "cpu-seconds" 80 (Reservation.cpu_seconds r);
  Alcotest.(check (float 1e-9)) "cpu-hours" (80. /. 3600.) (Reservation.cpu_hours r)

let test_reservation_invalid () =
  Alcotest.check_raises "empty interval" (Invalid_argument "Reservation.make: start >= finish")
    (fun () -> ignore (Reservation.make ~start:5 ~finish:5 ~procs:1));
  Alcotest.check_raises "zero procs" (Invalid_argument "Reservation.make: procs <= 0") (fun () ->
      ignore (Reservation.make ~start:0 ~finish:1 ~procs:0))

let test_reservation_overlaps () =
  let r1 = Reservation.make ~start:0 ~finish:10 ~procs:1 in
  let r2 = Reservation.make ~start:10 ~finish:20 ~procs:1 in
  let r3 = Reservation.make ~start:5 ~finish:15 ~procs:1 in
  Alcotest.(check bool) "adjacent don't overlap" false (Reservation.overlaps r1 r2);
  Alcotest.(check bool) "r1 r3 overlap" true (Reservation.overlaps r1 r3);
  Alcotest.(check bool) "r2 r3 overlap" true (Reservation.overlaps r2 r3)

let test_reservation_clip () =
  let r = Reservation.make ~start:0 ~finish:10 ~procs:2 in
  (match Reservation.clip r ~from_:5 with
  | Some c ->
      Alcotest.(check int) "clipped start" 5 c.start;
      Alcotest.(check int) "finish kept" 10 c.finish
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check bool) "fully past" true (Reservation.clip r ~from_:10 = None);
  Alcotest.(check bool) "untouched" true (Reservation.clip r ~from_:(-5) = Some r)

let test_reservation_shift () =
  let r = Reservation.make ~start:5 ~finish:10 ~procs:2 in
  let s = Reservation.shift r (-3) in
  Alcotest.(check int) "start" 2 s.start;
  Alcotest.(check int) "finish" 7 s.finish

(* ------------------------------------------------------------------ *)
(* Calendar: unit tests *)

let test_calendar_empty () =
  let c = Calendar.create ~procs:8 in
  Alcotest.(check int) "everything available" 8 (Calendar.available_at c 0);
  Alcotest.(check int) "in the past too" 8 (Calendar.available_at c (-1000));
  Alcotest.(check int) "far future" 8 (Calendar.available_at c 1_000_000)

let test_calendar_reserve () =
  let c = Calendar.create ~procs:8 in
  let c = Calendar.reserve c (Reservation.make ~start:10 ~finish:20 ~procs:3) in
  Alcotest.(check int) "before" 8 (Calendar.available_at c 9);
  Alcotest.(check int) "at start" 5 (Calendar.available_at c 10);
  Alcotest.(check int) "inside" 5 (Calendar.available_at c 19);
  Alcotest.(check int) "at finish" 8 (Calendar.available_at c 20)

let test_calendar_overcommit () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:10 ~procs:3) in
  let bad = Reservation.make ~start:5 ~finish:15 ~procs:2 in
  Alcotest.(check bool) "cannot reserve" false (Calendar.can_reserve c bad);
  Alcotest.(check bool) "reserve_opt none" true (Calendar.reserve_opt c bad = None);
  (try
     ignore (Calendar.reserve c bad);
     Alcotest.fail "expected Overcommitted"
   with Calendar.Overcommitted _ -> ())

let test_calendar_exact_fill () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:10 ~procs:2) in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:10 ~procs:2) in
  Alcotest.(check int) "zero available" 0 (Calendar.available_at c 5);
  Alcotest.(check int) "free after" 4 (Calendar.available_at c 10)

let test_calendar_persistence () =
  let c0 = Calendar.create ~procs:4 in
  let c1 = Calendar.reserve c0 (Reservation.make ~start:0 ~finish:10 ~procs:4) in
  Alcotest.(check int) "original untouched" 4 (Calendar.available_at c0 5);
  Alcotest.(check int) "new sees reservation" 0 (Calendar.available_at c1 5)

let test_calendar_min_avg () =
  let c = Calendar.create ~procs:10 in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:10 ~procs:4) in
  let c = Calendar.reserve c (Reservation.make ~start:5 ~finish:15 ~procs:2) in
  Alcotest.(check int) "min over [0,15)" 4 (Calendar.min_available c ~from_:0 ~until:15);
  (* availability: [0,5)=6, [5,10)=4, [10,15)=8 -> avg = (30+20+40)/15 = 6 *)
  Alcotest.(check (float 1e-9)) "average" 6. (Calendar.average_available c ~from_:0 ~until:15)

let test_calendar_segments () =
  let c = Calendar.create ~procs:10 in
  let c = Calendar.reserve c (Reservation.make ~start:2 ~finish:4 ~procs:5) in
  let segs = Calendar.segments c ~from_:0 ~until:6 in
  Alcotest.(check (list (triple int int int)))
    "segments" [ (0, 2, 10); (2, 4, 5); (4, 6, 10) ] segs

let test_earliest_fit_simple () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:100 ~procs:3) in
  (* 1 proc available until 100 *)
  Alcotest.(check (option int)) "1 proc fits now" (Some 0)
    (Calendar.earliest_fit c ~after:0 ~procs:1 ~dur:10);
  Alcotest.(check (option int)) "2 procs wait" (Some 100)
    (Calendar.earliest_fit c ~after:0 ~procs:2 ~dur:10);
  Alcotest.(check (option int)) "too many procs" None
    (Calendar.earliest_fit c ~after:0 ~procs:5 ~dur:10)

let test_earliest_fit_hole_too_small () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:10 ~procs:4) in
  let c = Calendar.reserve c (Reservation.make ~start:15 ~finish:30 ~procs:4) in
  (* hole [10,15) of width 5 *)
  Alcotest.(check (option int)) "fits in hole" (Some 10)
    (Calendar.earliest_fit c ~after:0 ~procs:2 ~dur:5);
  Alcotest.(check (option int)) "hole too small" (Some 30)
    (Calendar.earliest_fit c ~after:0 ~procs:2 ~dur:6)

let test_earliest_fit_after () =
  let c = Calendar.create ~procs:4 in
  Alcotest.(check (option int)) "respects after" (Some 42)
    (Calendar.earliest_fit c ~after:42 ~procs:4 ~dur:10)

let test_latest_fit_simple () =
  let c = Calendar.create ~procs:4 in
  Alcotest.(check (option int)) "end-aligned" (Some 90)
    (Calendar.latest_fit c ~earliest:0 ~finish_by:100 ~procs:2 ~dur:10);
  Alcotest.(check (option int)) "window too small" None
    (Calendar.latest_fit c ~earliest:95 ~finish_by:100 ~procs:2 ~dur:10)

let test_latest_fit_blocked () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:80 ~finish:100 ~procs:3) in
  (* 2 procs impossible during [80,100) *)
  Alcotest.(check (option int)) "before the block" (Some 70)
    (Calendar.latest_fit c ~earliest:0 ~finish_by:100 ~procs:2 ~dur:10);
  Alcotest.(check (option int)) "1 proc still fits late" (Some 90)
    (Calendar.latest_fit c ~earliest:0 ~finish_by:100 ~procs:1 ~dur:10)

let test_latest_fit_none () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:0 ~finish:100 ~procs:4) in
  Alcotest.(check (option int)) "fully booked" None
    (Calendar.latest_fit c ~earliest:0 ~finish_by:100 ~procs:1 ~dur:10)

let test_release_roundtrip () =
  let c0 = Calendar.create ~procs:8 in
  let r1 = Reservation.make ~start:10 ~finish:50 ~procs:3 in
  let r2 = Reservation.make ~start:30 ~finish:70 ~procs:2 in
  let c = Calendar.reserve (Calendar.reserve c0 r1) r2 in
  let c = Calendar.release c r1 in
  for t = 0 to 80 do
    let expected = if t >= 30 && t < 70 then 6 else 8 in
    if Calendar.available_at c t <> expected then
      Alcotest.failf "after release, avail at %d = %d, expected %d" t (Calendar.available_at c t)
        expected
  done

let test_release_not_held () =
  let c = Calendar.create ~procs:4 in
  Alcotest.check_raises "not held"
    (Invalid_argument "Calendar.release: reservation was not held on this calendar") (fun () ->
      ignore (Calendar.release c (Reservation.make ~start:0 ~finish:10 ~procs:1)))

let test_busy_rectangles_roundtrip () =
  let c = Calendar.create ~procs:8 in
  let c = Calendar.reserve c (Reservation.make ~start:5 ~finish:20 ~procs:3) in
  let c = Calendar.reserve c (Reservation.make ~start:10 ~finish:30 ~procs:2) in
  let c = Calendar.reserve c (Reservation.make ~start:25 ~finish:40 ~procs:4) in
  let rects = Calendar.busy_rectangles c ~from_:0 ~until:50 in
  let rebuilt = Calendar.of_reservations ~procs:8 rects in
  for t = 0 to 50 do
    Alcotest.(check int)
      (Printf.sprintf "availability at %d" t)
      (Calendar.available_at c t) (Calendar.available_at rebuilt t)
  done

let test_busy_series () =
  let c = Calendar.create ~procs:4 in
  let c = Calendar.reserve c (Reservation.make ~start:5 ~finish:15 ~procs:3) in
  let series = Calendar.busy_series c ~from_:0 ~until:20 ~step:5 in
  Alcotest.(check (list (float 1e-9))) "busy series" [ 0.; 3.; 3.; 0. ] series

let test_calendar_invalid_args () =
  let c = Calendar.create ~procs:4 in
  Alcotest.check_raises "create procs<=0" (Invalid_argument "Calendar.create: procs <= 0")
    (fun () -> ignore (Calendar.create ~procs:0));
  Alcotest.check_raises "min_available empty window"
    (Invalid_argument "Calendar.min_available: empty window") (fun () ->
      ignore (Calendar.min_available c ~from_:5 ~until:5));
  Alcotest.check_raises "average empty window"
    (Invalid_argument "Calendar.average_available: empty window") (fun () ->
      ignore (Calendar.average_available c ~from_:5 ~until:4));
  Alcotest.check_raises "earliest_fit dur<1" (Invalid_argument "Calendar.earliest_fit: dur < 1")
    (fun () -> ignore (Calendar.earliest_fit c ~after:0 ~procs:1 ~dur:0));
  Alcotest.check_raises "latest_fit procs<1" (Invalid_argument "Calendar.latest_fit: procs < 1")
    (fun () -> ignore (Calendar.latest_fit c ~earliest:0 ~finish_by:10 ~procs:0 ~dur:1));
  Alcotest.check_raises "busy_series step<=0" (Invalid_argument "Calendar.busy_series: step <= 0")
    (fun () -> ignore (Calendar.busy_series c ~from_:0 ~until:10 ~step:0));
  Alcotest.check_raises "busy_rectangles empty"
    (Invalid_argument "Calendar.busy_rectangles: empty window") (fun () ->
      ignore (Calendar.busy_rectangles c ~from_:3 ~until:3))

let test_grid_basics () =
  let g =
    Grid.make
      [
        ({ Grid.name = "a"; procs = 8; speed = 2.0 }, []);
        ({ Grid.name = "b"; procs = 16; speed = 0.5 }, []);
      ]
  in
  Alcotest.(check int) "sites" 2 (Grid.n_sites g);
  Alcotest.(check int) "total" 24 (Grid.total_procs g);
  (* reference = 8*2 + 16*0.5 = 24 *)
  Alcotest.(check int) "reference" 24 (Grid.reference_procs g);
  Alcotest.(check int) "scale up on fast site" 50 (Grid.scale_duration g ~site:0 100.);
  Alcotest.(check int) "scale down on slow site" 200 (Grid.scale_duration g ~site:1 100.);
  Alcotest.(check int) "min 1s" 1 (Grid.scale_duration g ~site:0 0.4)

let test_grid_invalid () =
  Alcotest.check_raises "no sites" (Invalid_argument "Grid.make: no sites") (fun () ->
      ignore (Grid.make []));
  Alcotest.check_raises "bad speed" (Invalid_argument "Grid.make: speed <= 0") (fun () ->
      ignore (Grid.make [ ({ Grid.name = "x"; procs = 4; speed = 0. }, []) ]))

let test_grid_reserve_persistent () =
  let g = Grid.make [ ({ Grid.name = "a"; procs = 8; speed = 1.0 }, []) ] in
  let g' = Grid.reserve g ~site:0 (Reservation.make ~start:0 ~finish:10 ~procs:8) in
  Alcotest.(check int) "original free" 8 (Calendar.available_at (Grid.calendar g 0) 5);
  Alcotest.(check int) "updated busy" 0 (Calendar.available_at (Grid.calendar g' 0) 5)

(* ------------------------------------------------------------------ *)
(* Brute-force reference model and properties *)

module Ref_model = struct
  let avail ~procs rs t =
    procs
    - List.fold_left
        (fun acc (r : Reservation.t) -> if r.start <= t && t < r.finish then acc + r.procs else acc)
        0 rs

  let fits ~procs rs ~np ~dur s =
    let ok = ref true in
    for t = s to s + dur - 1 do
      if avail ~procs rs t < np then ok := false
    done;
    !ok

  let earliest_fit ~procs rs ~after ~np ~dur =
    if np > procs then None
    else begin
      let horizon = List.fold_left (fun acc (r : Reservation.t) -> max acc r.finish) after rs in
      let rec go s = if fits ~procs rs ~np ~dur s then Some s else if s > horizon then None else go (s + 1) in
      go after
    end

  let latest_fit ~procs rs ~earliest ~finish_by ~np ~dur =
    if np > procs then None
    else begin
      let rec go s = if s < earliest then None else if fits ~procs rs ~np ~dur s then Some s else go (s - 1) in
      go (finish_by - dur)
    end
end

(* Generate a feasible reservation list on a small cluster with small
   times, so that brute force stays cheap. *)
let gen_reservations procs =
  QCheck.Gen.(
    list_size (0 -- 12)
      (triple (0 -- 40) (1 -- 12) (1 -- procs))
    >|= fun triples ->
    let rs = List.map (fun (s, d, np) -> Reservation.make ~start:s ~finish:(s + d) ~procs:np) triples in
    (* keep a feasible prefix-greedy subset *)
    let _, kept =
      List.fold_left
        (fun (cal, kept) r ->
          match Calendar.reserve_opt cal r with
          | Some cal -> (cal, r :: kept)
          | None -> (cal, kept))
        (Calendar.create ~procs, [])
        rs
    in
    List.rev kept)

let arb_scenario =
  let procs = 5 in
  QCheck.make
    ~print:(fun (rs, (after, np, dur)) ->
      Format.asprintf "rs=[%a] after=%d np=%d dur=%d"
        (Format.pp_print_list Reservation.pp)
        rs after np dur)
    QCheck.Gen.(
      pair (gen_reservations procs) (triple (0 -- 50) (1 -- procs) (1 -- 10)))

(* Queries go straight to the Mp_index tree; repeating them checks that
   reads never mutate the snapshot (the lazy add tags are pushed only on
   path-copied nodes, so a query must be repeatable). *)
let stable_query cal q =
  let first = q cal in
  let rec warm k last = if k = 0 then last else warm (k - 1) (q cal) in
  let last = warm 6 first in
  if first = last then first else failwith "repeated query changed its answer"

let prop_earliest_fit_matches_reference =
  QCheck.Test.make ~name:"earliest_fit matches brute force" ~count:500 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let procs = 5 in
      let cal = Calendar.of_reservations ~procs rs in
      let got = stable_query cal (fun cal -> Calendar.earliest_fit cal ~after ~procs:np ~dur) in
      let want = Ref_model.earliest_fit ~procs rs ~after ~np ~dur in
      got = want)

let prop_latest_fit_matches_reference =
  QCheck.Test.make ~name:"latest_fit matches brute force" ~count:500 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let procs = 5 in
      let finish_by = after + 30 in
      let earliest = max 0 (after - 20) in
      let cal = Calendar.of_reservations ~procs rs in
      let got =
        stable_query cal (fun cal -> Calendar.latest_fit cal ~earliest ~finish_by ~procs:np ~dur)
      in
      let want = Ref_model.latest_fit ~procs rs ~earliest ~finish_by ~np ~dur in
      got = want)

let prop_available_matches_reference =
  QCheck.Test.make ~name:"available_at matches brute force" ~count:500
    (QCheck.make QCheck.Gen.(pair (gen_reservations 5) (0 -- 60)))
    (fun (rs, t) ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      Calendar.available_at cal t = Ref_model.avail ~procs:5 rs t)

let prop_fit_result_actually_fits =
  QCheck.Test.make ~name:"earliest_fit result is reservable" ~count:500 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      match Calendar.earliest_fit cal ~after ~procs:np ~dur with
      | None -> true
      | Some s ->
          s >= after
          && Calendar.can_reserve cal (Reservation.make ~start:s ~finish:(s + dur) ~procs:np))

let prop_latest_fit_result_within_bounds =
  QCheck.Test.make ~name:"latest_fit result within bounds and reservable" ~count:500 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let finish_by = after + 30 in
      let cal = Calendar.of_reservations ~procs:5 rs in
      match Calendar.latest_fit cal ~earliest:0 ~finish_by ~procs:np ~dur with
      | None -> true
      | Some s ->
          s >= 0
          && s + dur <= finish_by
          && Calendar.can_reserve cal (Reservation.make ~start:s ~finish:(s + dur) ~procs:np))

let prop_reserve_decreases_availability =
  QCheck.Test.make ~name:"reserve subtracts exactly procs inside the interval" ~count:300
    (QCheck.make QCheck.Gen.(pair (gen_reservations 5) (triple (0 -- 40) (1 -- 8) (1 -- 5))))
    (fun (rs, (s, d, np)) ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      let r = Reservation.make ~start:s ~finish:(s + d) ~procs:np in
      match Calendar.reserve_opt cal r with
      | None -> true
      | Some cal' ->
          let ok = ref true in
          for t = s - 2 to s + d + 2 do
            let before = Calendar.available_at cal t and after = Calendar.available_at cal' t in
            let expected = if t >= s && t < s + d then before - np else before in
            if after <> expected then ok := false
          done;
          !ok)

let prop_busy_rectangles_reproduce_profile =
  QCheck.Test.make ~name:"busy_rectangles reproduce the availability profile" ~count:300
    (QCheck.make (gen_reservations 5))
    (fun rs ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      let rects = Calendar.busy_rectangles cal ~from_:(-5) ~until:70 in
      let rebuilt = Calendar.of_reservations ~procs:5 rects in
      let ok = ref true in
      for t = -5 to 69 do
        if Calendar.available_at cal t <> Calendar.available_at rebuilt t then ok := false
      done;
      !ok)

let prop_release_inverts_reserve =
  QCheck.Test.make ~name:"release inverts reserve" ~count:300
    (QCheck.make QCheck.Gen.(pair (gen_reservations 5) (triple (0 -- 40) (1 -- 8) (1 -- 5))))
    (fun (rs, (s, d, np)) ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      let r = Reservation.make ~start:s ~finish:(s + d) ~procs:np in
      match Calendar.reserve_opt cal r with
      | None -> true
      | Some cal' ->
          let back = Calendar.release cal' r in
          let ok = ref true in
          for t = -2 to 60 do
            if Calendar.available_at back t <> Calendar.available_at cal t then ok := false
          done;
          !ok)

(* Reserve path-copies O(log R) tree nodes off the parent snapshot; the
   child must answer exactly like a cold calendar built from the same
   reservations (the shared subtrees carry no stale summaries). *)
let prop_incremental_reserve_matches_cold_calendar =
  QCheck.Test.make ~name:"incremental reserve equals the cold-built calendar" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (gen_reservations 5) (triple (0 -- 40) (1 -- 8) (1 -- 5))))
    (fun (rs, (s, d, np)) ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      (* Query first so reserve happens on an already-queried snapshot. *)
      let (_ : int) = stable_query cal (fun cal -> Calendar.available_at cal 0) in
      let r = Reservation.make ~start:s ~finish:(s + d) ~procs:np in
      match Calendar.reserve_opt cal r with
      | None -> true
      | Some patched ->
          let cold = Calendar.of_reservations ~procs:5 (rs @ [ r ]) in
          let ok = ref true in
          for t = -2 to 60 do
            if Calendar.available_at patched t <> Calendar.available_at cold t then ok := false
          done;
          for after = 0 to 20 do
            let q cal = Calendar.earliest_fit cal ~after ~procs:np ~dur:(max 1 d) in
            if stable_query patched q <> q cold then ok := false;
            let q cal =
              Calendar.latest_fit cal ~earliest:0 ~finish_by:(after + 25) ~procs:np
                ~dur:(max 1 d)
            in
            if stable_query patched q <> q cold then ok := false
          done;
          !ok)

(* Cross-layer: the calendar is a thin veneer over Mp_index — both
   layers must expose the same step function, the same breakpoint set
   and the same fit answers for the same reservations. *)
let prop_calendar_matches_raw_index =
  QCheck.Test.make ~name:"calendar agrees with a raw Mp_index" ~count:300 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let cal = Calendar.of_reservations ~procs:5 rs in
      let idx =
        List.fold_left
          (fun idx (r : Reservation.t) ->
            match Mp_index.reserve idx ~start:r.start ~finish:r.finish ~procs:r.procs with
            | Some idx -> idx
            | None -> QCheck.Test.fail_report "soup reservation rejected by raw index")
          (Mp_index.create ~procs:5) rs
      in
      let ok = ref true in
      for t = -2 to 60 do
        if Calendar.available_at cal t <> Mp_index.available_at idx t then ok := false
      done;
      !ok
      && Calendar.breakpoints cal = Mp_index.breakpoints idx
      && Calendar.earliest_fit cal ~after ~procs:np ~dur
         = Mp_index.earliest_fit idx ~after ~procs:np ~dur
      && Calendar.latest_fit cal ~earliest:0 ~finish_by:(after + 30) ~procs:np ~dur
         = Mp_index.latest_fit idx ~earliest:0 ~finish_by:(after + 30) ~procs:np ~dur)

(* A Txn must answer every query exactly as the persistent calendar
   obtained by folding the same reservations with [reserve] would.  The
   op list is long enough (and interleaves queries between reserves) to
   exercise the transaction's mutable-root updates over the shared
   Mp_index tree — cuts at reservation ends plus lazy range adds. *)
let prop_txn_matches_persistent_fold =
  QCheck.Test.make ~name:"txn reserve/query sequence matches persistent fold" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (gen_reservations 5)
           (list_size (1 -- 24) (quad (0 -- 40) (1 -- 10) (1 -- 6) (0 -- 45)))))
    (fun (rs, ops) ->
      let base = Calendar.of_reservations ~procs:5 rs in
      let txn = Calendar.Txn.start base in
      let ok = ref true in
      let check b = if not b then ok := false in
      let cal = ref base in
      List.iter
        (fun (s, d, np, after) ->
          let dur = max 1 (d / 2) in
          check (Calendar.Txn.available_at txn after = Calendar.available_at !cal after);
          check
            (Calendar.Txn.earliest_fit txn ~after ~procs:np ~dur
            = Calendar.earliest_fit !cal ~after ~procs:np ~dur);
          (* a [limit] only filters: same answer as the unbounded query when
             that answer is within the limit, [None] otherwise *)
          let limit = after + 10 in
          let unbounded = Calendar.earliest_fit !cal ~after ~procs:np ~dur in
          let want = match unbounded with Some s when s <= limit -> Some s | _ -> None in
          check (Calendar.Txn.earliest_fit ~limit txn ~after ~procs:np ~dur = want);
          check
            (Calendar.Txn.latest_fit txn ~earliest:0 ~finish_by:(after + 20) ~procs:np ~dur
            = Calendar.latest_fit !cal ~earliest:0 ~finish_by:(after + 20) ~procs:np ~dur);
          let r = Reservation.make ~start:s ~finish:(s + d) ~procs:np in
          check (Calendar.Txn.can_reserve txn r = Calendar.can_reserve !cal r);
          let applied = Calendar.Txn.reserve_opt txn r in
          (match Calendar.reserve_opt !cal r with
          | Some cal' ->
              check applied;
              cal := cal'
          | None -> check (not applied)))
        ops;
      !ok)

(* latest_fit_scan is a generation-stamped facade over [Txn.latest_fit]
   (the tree summaries already make the walk O(log R) per blocked run);
   it must agree with it everywhere, and go stale on reserve. *)
let prop_latest_fit_scan_matches_latest_fit =
  QCheck.Test.make ~name:"latest_fit_scan matches latest_fit" ~count:200
    (QCheck.make QCheck.Gen.(pair (gen_reservations 5) (20 -- 60)))
    (fun (rs, finish_by) ->
      let txn = Calendar.Txn.start (Calendar.of_reservations ~procs:5 rs) in
      let scan = Calendar.Txn.latest_scan txn ~finish_by in
      let ok = ref true in
      for earliest = 0 to 12 do
        for np = 1 to 5 do
          for dur = 1 to 8 do
            let got = Calendar.Txn.latest_fit_scan scan ~earliest ~procs:np ~dur in
            let want = Calendar.Txn.latest_fit txn ~earliest ~finish_by ~procs:np ~dur in
            if got <> want then ok := false
          done
        done
      done;
      (* any reserve invalidates the scan (far-future slot: always free) *)
      Calendar.Txn.reserve txn (Reservation.make ~start:1000 ~finish:1001 ~procs:1);
      let stale =
        match Calendar.Txn.latest_fit_scan scan ~earliest:0 ~procs:1 ~dur:1 with
        | exception Invalid_argument _ -> true
        | _ -> false
      in
      !ok && stale)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_busy_rectangles_reproduce_profile;
        prop_release_inverts_reserve;
        prop_earliest_fit_matches_reference;
        prop_latest_fit_matches_reference;
        prop_available_matches_reference;
        prop_fit_result_actually_fits;
        prop_latest_fit_result_within_bounds;
        prop_reserve_decreases_availability;
        prop_incremental_reserve_matches_cold_calendar;
        prop_calendar_matches_raw_index;
        prop_txn_matches_persistent_fold;
        prop_latest_fit_scan_matches_latest_fit;
      ]
  in
  Alcotest.run "platform"
    [
      ( "reservation",
        [
          Alcotest.test_case "basics" `Quick test_reservation_basics;
          Alcotest.test_case "invalid args" `Quick test_reservation_invalid;
          Alcotest.test_case "overlaps" `Quick test_reservation_overlaps;
          Alcotest.test_case "clip" `Quick test_reservation_clip;
          Alcotest.test_case "shift" `Quick test_reservation_shift;
        ] );
      ( "calendar",
        [
          Alcotest.test_case "empty" `Quick test_calendar_empty;
          Alcotest.test_case "reserve" `Quick test_calendar_reserve;
          Alcotest.test_case "overcommit" `Quick test_calendar_overcommit;
          Alcotest.test_case "exact fill" `Quick test_calendar_exact_fill;
          Alcotest.test_case "persistence" `Quick test_calendar_persistence;
          Alcotest.test_case "min and average" `Quick test_calendar_min_avg;
          Alcotest.test_case "segments" `Quick test_calendar_segments;
          Alcotest.test_case "earliest_fit simple" `Quick test_earliest_fit_simple;
          Alcotest.test_case "earliest_fit small hole" `Quick test_earliest_fit_hole_too_small;
          Alcotest.test_case "earliest_fit after" `Quick test_earliest_fit_after;
          Alcotest.test_case "latest_fit simple" `Quick test_latest_fit_simple;
          Alcotest.test_case "latest_fit blocked" `Quick test_latest_fit_blocked;
          Alcotest.test_case "latest_fit none" `Quick test_latest_fit_none;
          Alcotest.test_case "busy series" `Quick test_busy_series;
          Alcotest.test_case "release roundtrip" `Quick test_release_roundtrip;
          Alcotest.test_case "release not held" `Quick test_release_not_held;
          Alcotest.test_case "busy rectangles roundtrip" `Quick test_busy_rectangles_roundtrip;
        ] );
      ( "invalid-args",
        [ Alcotest.test_case "calendar" `Quick test_calendar_invalid_args ] );
      ( "grid",
        [
          Alcotest.test_case "basics" `Quick test_grid_basics;
          Alcotest.test_case "invalid" `Quick test_grid_invalid;
          Alcotest.test_case "reserve persistent" `Quick test_grid_reserve_persistent;
        ] );
      ("properties", props);
    ]
