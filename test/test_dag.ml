open Mp_dag
module Rng = Mp_prelude.Rng

(* A small hand-built diamond DAG:
     0 -> 1 -> 3
     0 -> 2 -> 3
   with known weights. *)
let diamond ?(seq = [| 100.; 200.; 300.; 400. |]) () =
  let tasks = Array.mapi (fun id s -> Task.make ~id ~seq:s ~alpha:0.) seq in
  Dag.make tasks [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let chain n =
  let tasks = Array.init n (fun id -> Task.make ~id ~seq:100. ~alpha:0.1) in
  Dag.make tasks (List.init (n - 1) (fun i -> (i, i + 1)))

(* ------------------------------------------------------------------ *)
(* Task *)

let test_task_amdahl () =
  let t = Task.make ~id:0 ~seq:1000. ~alpha:0.1 in
  Alcotest.(check int) "1 proc" 1000 (Task.exec_time t 1);
  (* 1000 * (0.1 + 0.9/2) = 550 *)
  Alcotest.(check int) "2 procs" 550 (Task.exec_time t 2);
  (* 1000 * (0.1 + 0.9/10) = 190 *)
  Alcotest.(check int) "10 procs" 190 (Task.exec_time t 10)

let test_task_fully_parallel () =
  let t = Task.make ~id:0 ~seq:100. ~alpha:0. in
  Alcotest.(check int) "100 procs" 1 (Task.exec_time t 100)

let test_task_fully_sequential () =
  let t = Task.make ~id:0 ~seq:100. ~alpha:1. in
  Alcotest.(check int) "no speedup" 100 (Task.exec_time t 64)

let test_task_exec_monotone () =
  let t = Task.make ~id:0 ~seq:5000. ~alpha:0.23 in
  for np = 1 to 63 do
    if Task.exec_time t np < Task.exec_time t (np + 1) then
      Alcotest.failf "exec_time increased from np=%d to %d" np (np + 1)
  done

let test_task_work_monotone () =
  let t = Task.make ~id:0 ~seq:5000. ~alpha:0.23 in
  for np = 1 to 63 do
    if Task.work t np > Task.work t (np + 1) then
      Alcotest.failf "work decreased from np=%d to %d" np (np + 1)
  done

let test_task_invalid () =
  Alcotest.check_raises "seq <= 0" (Invalid_argument "Task.make: seq <= 0") (fun () ->
      ignore (Task.make ~id:0 ~seq:0. ~alpha:0.5));
  Alcotest.check_raises "alpha > 1" (Invalid_argument "Task.make: alpha not in [0,1]") (fun () ->
      ignore (Task.make ~id:0 ~seq:1. ~alpha:1.5))

let test_task_min_one_second () =
  let t = Task.make ~id:0 ~seq:0.5 ~alpha:0. in
  Alcotest.(check int) "at least 1s" 1 (Task.exec_time t 4)

(* ------------------------------------------------------------------ *)
(* Dag *)

let test_dag_diamond_structure () =
  let d = diamond () in
  Alcotest.(check int) "n" 4 (Dag.n d);
  Alcotest.(check int) "edges" 4 (Dag.n_edges d);
  Alcotest.(check int) "entry" 0 (Dag.entry d);
  Alcotest.(check int) "exit" 3 (Dag.exit_ d);
  Alcotest.(check (array int)) "succs of 0" [| 1; 2 |] (Dag.succs d 0);
  Alcotest.(check (array int)) "preds of 3" [| 1; 2 |] (Dag.preds d 3)

let test_dag_topo_valid () =
  let d = diamond () in
  let order = Dag.topological_order d in
  let pos = Array.make (Dag.n d) 0 in
  Array.iteri (fun k i -> pos.(i) <- k) order;
  List.iter
    (fun (i, j) ->
      if pos.(i) >= pos.(j) then Alcotest.failf "topo violates edge (%d, %d)" i j)
    (Dag.edges d)

let test_dag_rejects_cycle () =
  (* 0 -> 1 <-> 2 -> 3: unique source and sink, but 1 and 2 form a cycle. *)
  let tasks = Array.init 4 (fun id -> Task.make ~id ~seq:1. ~alpha:0.) in
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.make: graph has a cycle") (fun () ->
      ignore (Dag.make tasks [ (0, 1); (1, 2); (2, 1); (2, 3) ]))

let test_dag_rejects_self_loop () =
  let tasks = Array.init 2 (fun id -> Task.make ~id ~seq:1. ~alpha:0.) in
  Alcotest.check_raises "self-loop" (Invalid_argument "Dag.make: self-loop") (fun () ->
      ignore (Dag.make tasks [ (0, 0); (0, 1) ]))

let test_dag_rejects_multi_entry () =
  let tasks = Array.init 3 (fun id -> Task.make ~id ~seq:1. ~alpha:0.) in
  Alcotest.check_raises "two entries" (Invalid_argument "Dag.make: DAG must have a single entry task")
    (fun () -> ignore (Dag.make tasks [ (0, 2); (1, 2) ]))

let test_dag_rejects_duplicate_edge () =
  let tasks = Array.init 2 (fun id -> Task.make ~id ~seq:1. ~alpha:0.) in
  Alcotest.check_raises "dup" (Invalid_argument "Dag.make: duplicate edge") (fun () ->
      ignore (Dag.make tasks [ (0, 1); (0, 1) ]))

let test_dag_sub_suffix () =
  let d = diamond () in
  (* Keep tasks 1, 2, 3: two sources -> virtual entry added. *)
  let keep = [| false; true; true; true |] in
  match Dag.sub d ~keep with
  | None -> Alcotest.fail "expected Some"
  | Some (sub, mapping) ->
      Alcotest.(check int) "5 tasks with virtual entry" 4 (Dag.n sub);
      let olds = Array.to_list mapping in
      Alcotest.(check bool) "has virtual" true (List.mem (-1) olds);
      Alcotest.(check bool) "kept 1 2 3" true
        (List.mem 1 olds && List.mem 2 olds && List.mem 3 olds)

let test_dag_sub_empty () =
  let d = diamond () in
  Alcotest.(check bool) "none kept" true (Dag.sub d ~keep:[| false; false; false; false |] = None)

let test_dag_to_dot () =
  let d = diamond () in
  let dot = Dag.to_dot d in
  Alcotest.(check bool) "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph")

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_bottom_levels_diamond () =
  let d = diamond () in
  let weights = [| 100.; 200.; 300.; 400. |] in
  let bl = Analysis.bottom_levels d ~weights in
  Alcotest.(check (float 1e-9)) "exit" 400. bl.(3);
  Alcotest.(check (float 1e-9)) "mid 1" 600. bl.(1);
  Alcotest.(check (float 1e-9)) "mid 2" 700. bl.(2);
  Alcotest.(check (float 1e-9)) "entry = cp" 800. bl.(0);
  Alcotest.(check (float 1e-9)) "cp_length" 800. (Analysis.cp_length d ~weights)

let test_top_levels_diamond () =
  let d = diamond () in
  let weights = [| 100.; 200.; 300.; 400. |] in
  let tl = Analysis.top_levels d ~weights in
  Alcotest.(check (float 1e-9)) "entry" 0. tl.(0);
  Alcotest.(check (float 1e-9)) "mid 1" 100. tl.(1);
  Alcotest.(check (float 1e-9)) "mid 2" 100. tl.(2);
  Alcotest.(check (float 1e-9)) "exit" 400. tl.(3)

let test_critical_path_diamond () =
  let d = diamond () in
  let weights = [| 100.; 200.; 300.; 400. |] in
  Alcotest.(check (list int)) "path through 2" [ 0; 2; 3 ] (Analysis.critical_path d ~weights)

let test_on_critical_path () =
  let d = diamond () in
  let weights = [| 100.; 200.; 300.; 400. |] in
  let cp = Analysis.on_critical_path d ~weights in
  Alcotest.(check (array bool)) "cp mask" [| true; false; true; true |] cp

let test_levels_diamond () =
  let d = diamond () in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] (Analysis.levels d);
  Alcotest.(check (array int)) "widths" [| 1; 2; 1 |] (Analysis.level_widths d);
  Alcotest.(check int) "width" 2 (Analysis.width d)

let test_total_work () =
  let d = diamond ~seq:[| 100.; 100.; 100.; 100. |] () in
  let allocs = [| 1; 1; 1; 1 |] in
  Alcotest.(check (float 1e-9)) "work with alpha=0" 400. (Analysis.total_work d ~allocs);
  Alcotest.(check (float 1e-9)) "area" 100. (Analysis.average_area d ~allocs ~p:4)

(* Brute-force longest path by enumerating all paths (small DAGs only). *)
let brute_force_cp dag ~weights =
  let rec longest i =
    let succs = Dag.succs dag i in
    let best = Array.fold_left (fun acc j -> Float.max acc (longest j)) 0. succs in
    weights.(i) +. best
  in
  longest (Dag.entry dag)

(* ------------------------------------------------------------------ *)
(* Generator properties *)

let arb_params =
  QCheck.make
    ~print:(fun (p : Dag_gen.params) -> Format.asprintf "%a" Dag_gen.pp_params p)
    QCheck.Gen.(
      let* n = 3 -- 60 in
      let* alpha = float_range 0.01 1.0 in
      let* width = float_range 0.05 1.0 in
      let* regularity = float_range 0.05 1.0 in
      let* density = float_range 0.05 1.0 in
      let* jump = 1 -- 4 in
      return { Dag_gen.n; alpha; width; regularity; density; jump })

let gen_dag_of_seed (params : Dag_gen.params) seed = Dag_gen.generate (Rng.create seed) params

let prop_gen_structure =
  QCheck.Test.make ~name:"generated DAGs are valid and sized n" ~count:200
    QCheck.(pair arb_params small_int)
    (fun (params, seed) ->
      let d = gen_dag_of_seed params seed in
      Dag.n d = params.n
      && Array.length (Dag.preds d (Dag.entry d)) = 0
      && Array.length (Dag.succs d (Dag.exit_ d)) = 0)

let prop_gen_alpha_bounded =
  QCheck.Test.make ~name:"generated alphas within [0, alpha]" ~count:100
    QCheck.(pair arb_params small_int)
    (fun (params, seed) ->
      let d = gen_dag_of_seed params seed in
      Array.for_all
        (fun (tk : Task.t) -> tk.alpha >= 0. && tk.alpha <= params.alpha +. 1e-9)
        (Dag.tasks d))

let prop_gen_seq_bounded =
  QCheck.Test.make ~name:"sequential times within [60s, 10h]" ~count:100
    QCheck.(pair arb_params small_int)
    (fun (params, seed) ->
      let d = gen_dag_of_seed params seed in
      Array.for_all (fun (tk : Task.t) -> tk.seq >= 60. && tk.seq <= 36_000.) (Dag.tasks d))

let prop_gen_layered_when_jump_one =
  (* With jump = 1 the generator produces a layered DAG: every inner task
     has a predecessor in the previous generation level, so recomputed
     longest-path levels make every inner edge span exactly one level. *)
  QCheck.Test.make ~name:"jump=1 yields a layered DAG" ~count:100
    QCheck.(pair arb_params small_int)
    (fun (params, seed) ->
      let params = { params with jump = 1 } in
      let d = gen_dag_of_seed params seed in
      let lev = Analysis.levels d in
      List.for_all
        (fun (i, j) -> j = Dag.exit_ d || lev.(j) - lev.(i) = 1)
        (Dag.edges d))

let prop_gen_deterministic =
  QCheck.Test.make ~name:"same seed, same DAG" ~count:50
    QCheck.(pair arb_params small_int)
    (fun (params, seed) ->
      let d1 = gen_dag_of_seed params seed and d2 = gen_dag_of_seed params seed in
      Dag.edges d1 = Dag.edges d2 && Dag.tasks d1 = Dag.tasks d2)

let prop_bottom_level_matches_brute_force =
  QCheck.Test.make ~name:"cp_length matches path enumeration" ~count:50
    QCheck.(pair arb_params small_int)
    (fun (params, seed) ->
      let params = { params with n = min params.n 16 } in
      let d = gen_dag_of_seed params seed in
      let weights = Array.map (fun (tk : Task.t) -> tk.seq) (Dag.tasks d) in
      Float.abs (Analysis.cp_length d ~weights -. brute_force_cp d ~weights) < 1e-6)

let prop_width_chains_vs_forks =
  QCheck.Test.make ~name:"wider parameter gives at least as much parallelism on average" ~count:20
    QCheck.small_int
    (fun seed ->
      let narrow = { Dag_gen.default with width = 0.1; n = 50 } in
      let wide = { Dag_gen.default with width = 0.9; n = 50 } in
      let w_of p s = Analysis.width (gen_dag_of_seed p (s * 7919)) in
      (* compare averages over a few draws to avoid flakiness *)
      let avg p =
        let total = ref 0 in
        for k = 1 to 5 do
          total := !total + w_of p ((seed * 5) + k)
        done;
        !total
      in
      avg narrow < avg wide)

let test_analysis_invalid_args () =
  let d = diamond () in
  Alcotest.check_raises "weights mismatch" (Invalid_argument "Analysis: weights length mismatch")
    (fun () -> ignore (Analysis.bottom_levels d ~weights:[| 1. |]));
  Alcotest.check_raises "allocs mismatch"
    (Invalid_argument "Analysis.total_work: allocs length mismatch") (fun () ->
      ignore (Analysis.total_work d ~allocs:[| 1 |]));
  Alcotest.check_raises "area p<=0" (Invalid_argument "Analysis.average_area: p <= 0") (fun () ->
      ignore (Analysis.average_area d ~allocs:[| 1; 1; 1; 1 |] ~p:0))

let test_alloc_candidates () =
  let t = Task.make ~id:0 ~seq:1000. ~alpha:0.1 in
  let cands = Task.alloc_candidates t ~max_np:32 in
  (* ascending, starts at 1, within bound *)
  Alcotest.(check int) "starts at 1" 1 (List.hd cands);
  Alcotest.(check bool) "ascending" true (List.sort compare cands = cands);
  Alcotest.(check bool) "within bound" true (List.for_all (fun np -> np <= 32) cands);
  (* consecutive candidates have strictly decreasing durations *)
  let durs = List.map (Task.exec_time t) cands in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly decreasing durations" true (strictly_decreasing durs);
  (* every duration in 1..32 is achieved by some candidate *)
  for np = 1 to 32 do
    let d = Task.exec_time t np in
    if not (List.mem d durs) then Alcotest.failf "duration %d (np=%d) not covered" d np
  done;
  Alcotest.check_raises "max_np < 1" (Invalid_argument "Task.alloc_candidates: max_np < 1")
    (fun () -> ignore (Task.alloc_candidates t ~max_np:0))

let test_candidates_table () =
  (* The cached table must be exactly the alloc_candidates scan plus the
     matching rounded durations. *)
  let t = Task.make ~id:0 ~seq:1000. ~alpha:0.1 in
  let c = Task.candidates t ~max_np:32 in
  Alcotest.(check int) "bound recorded" 32 c.Task.bound;
  Alcotest.(check (list int)) "same counts" (Task.alloc_candidates t ~max_np:32)
    (Array.to_list c.Task.nps);
  Alcotest.(check (list int)) "durations match exec_time"
    (List.map (Task.exec_time t) (Array.to_list c.Task.nps))
    (Array.to_list c.Task.durs);
  Alcotest.check_raises "max_np < 1" (Invalid_argument "Task.candidates: max_np < 1") (fun () ->
      ignore (Task.candidates t ~max_np:0))

(* ------------------------------------------------------------------ *)
(* Classic workflows *)

let test_workflow_chain () =
  let d = Workflows.chain (Rng.create 1) ~n:8 () in
  Alcotest.(check int) "n" 8 (Dag.n d);
  Alcotest.(check int) "width" 1 (Analysis.width d)

let test_workflow_fork_join () =
  let d = Workflows.fork_join (Rng.create 2) ~branches:5 ~stages:3 () in
  (* entry + 3 x (5 branches + 1 sync) *)
  Alcotest.(check int) "n" (1 + (3 * 6)) (Dag.n d);
  Alcotest.(check int) "width" 5 (Analysis.width d)

let test_workflow_fft () =
  let m = 4 in
  let d = Workflows.fft (Rng.create 3) ~m () in
  let width = 1 lsl m in
  (* (m+1) layers of 2^m tasks + entry + exit *)
  Alcotest.(check int) "n" (((m + 1) * width) + 2) (Dag.n d);
  Alcotest.(check int) "width" width (Analysis.width d);
  (* every non-funnel task in layers 1..m has exactly two predecessors *)
  let two_preds = ref 0 in
  for i = 0 to Dag.n d - 1 do
    if Array.length (Dag.preds d i) = 2 then incr two_preds
  done;
  Alcotest.(check int) "butterfly in-degree" (m * width) !two_preds

let test_workflow_strassen () =
  let d = Workflows.strassen (Rng.create 4) ~levels:2 () in
  (* level 2: 1 root (split+combine) + 7 children (split+combine) = 16 *)
  Alcotest.(check int) "n" 16 (Dag.n d);
  Alcotest.(check int) "7 parallel multiplies" 7 (Analysis.width d)

let test_workflow_gaussian () =
  let n = 5 in
  let d = Workflows.gaussian (Rng.create 5) ~n () in
  (* pivots: n-1; updates: sum_{k=0}^{n-2} (n-1-k) = 4+3+2+1 = 10 *)
  Alcotest.(check int) "n" (4 + 10) (Dag.n d);
  (* parallelism shrinks: first update level is the widest *)
  Alcotest.(check int) "width" (n - 1) (Analysis.width d)

let test_workflow_wavefront () =
  let d = Workflows.wavefront (Rng.create 6) ~rows:4 ~cols:6 () in
  Alcotest.(check int) "n" 24 (Dag.n d);
  (* widest anti-diagonal of a 4x6 grid has 4 cells *)
  Alcotest.(check int) "width" 4 (Analysis.width d)

let test_workflow_all_named_valid () =
  List.iter
    (fun (name, d) ->
      (* Dag.make already validated; check single entry/exit explicitly *)
      if Array.length (Dag.preds d (Dag.entry d)) <> 0 then Alcotest.failf "%s: entry has preds" name;
      if Array.length (Dag.succs d (Dag.exit_ d)) <> 0 then Alcotest.failf "%s: exit has succs" name;
      if Dag.n d < 3 then Alcotest.failf "%s: degenerate" name)
    (Workflows.all_named (Rng.create 7))

let test_workflow_invalid_args () =
  Alcotest.check_raises "chain n<2" (Invalid_argument "Workflows.chain: n < 2") (fun () ->
      ignore (Workflows.chain (Rng.create 1) ~n:1 ()));
  Alcotest.check_raises "fft m>8" (Invalid_argument "Workflows.fft: m outside [1, 8]") (fun () ->
      ignore (Workflows.fft (Rng.create 1) ~m:9 ()))

let prop_candidates_match_alloc_candidates =
  QCheck.Test.make ~name:"cached candidate tables == direct alloc_candidates" ~count:200
    QCheck.(triple (1 -- 128) (60 -- 36_000) (0 -- 100))
    (fun (max_np, seq_s, alpha_pct) ->
      let t = Task.make ~id:0 ~seq:(float_of_int seq_s) ~alpha:(float_of_int alpha_pct /. 100.) in
      let c = Task.candidates t ~max_np in
      c.Task.bound = max_np
      && Array.to_list c.Task.nps = Task.alloc_candidates t ~max_np
      && Array.to_list c.Task.durs
         = List.map (Task.exec_time t) (Array.to_list c.Task.nps))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_gen_structure;
        prop_gen_alpha_bounded;
        prop_gen_seq_bounded;
        prop_gen_layered_when_jump_one;
        prop_gen_deterministic;
        prop_bottom_level_matches_brute_force;
        prop_width_chains_vs_forks;
        prop_candidates_match_alloc_candidates;
      ]
  in
  Alcotest.run "dag"
    [
      ( "task",
        [
          Alcotest.test_case "amdahl" `Quick test_task_amdahl;
          Alcotest.test_case "fully parallel" `Quick test_task_fully_parallel;
          Alcotest.test_case "fully sequential" `Quick test_task_fully_sequential;
          Alcotest.test_case "exec monotone" `Quick test_task_exec_monotone;
          Alcotest.test_case "work monotone" `Quick test_task_work_monotone;
          Alcotest.test_case "invalid" `Quick test_task_invalid;
          Alcotest.test_case "min one second" `Quick test_task_min_one_second;
        ] );
      ( "dag",
        [
          Alcotest.test_case "diamond structure" `Quick test_dag_diamond_structure;
          Alcotest.test_case "topo valid" `Quick test_dag_topo_valid;
          Alcotest.test_case "rejects cycle" `Quick test_dag_rejects_cycle;
          Alcotest.test_case "rejects self-loop" `Quick test_dag_rejects_self_loop;
          Alcotest.test_case "rejects multi-entry" `Quick test_dag_rejects_multi_entry;
          Alcotest.test_case "rejects duplicate edge" `Quick test_dag_rejects_duplicate_edge;
          Alcotest.test_case "sub suffix" `Quick test_dag_sub_suffix;
          Alcotest.test_case "sub empty" `Quick test_dag_sub_empty;
          Alcotest.test_case "to_dot" `Quick test_dag_to_dot;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "bottom levels" `Quick test_bottom_levels_diamond;
          Alcotest.test_case "top levels" `Quick test_top_levels_diamond;
          Alcotest.test_case "critical path" `Quick test_critical_path_diamond;
          Alcotest.test_case "on critical path" `Quick test_on_critical_path;
          Alcotest.test_case "levels" `Quick test_levels_diamond;
          Alcotest.test_case "total work" `Quick test_total_work;
          Alcotest.test_case "invalid args" `Quick test_analysis_invalid_args;
          Alcotest.test_case "alloc candidates" `Quick test_alloc_candidates;
          Alcotest.test_case "candidates table" `Quick test_candidates_table;
        ] );
      ("generator", props);
      ( "workflows",
        [
          Alcotest.test_case "chain" `Quick test_workflow_chain;
          Alcotest.test_case "fork-join" `Quick test_workflow_fork_join;
          Alcotest.test_case "fft butterfly" `Quick test_workflow_fft;
          Alcotest.test_case "strassen" `Quick test_workflow_strassen;
          Alcotest.test_case "gaussian" `Quick test_workflow_gaussian;
          Alcotest.test_case "wavefront" `Quick test_workflow_wavefront;
          Alcotest.test_case "all named valid" `Quick test_workflow_all_named_valid;
          Alcotest.test_case "invalid args" `Quick test_workflow_invalid_args;
        ] );
      ("chain", [ Alcotest.test_case "chain shape" `Quick (fun () ->
        let d = chain 5 in
        Alcotest.(check int) "width 1" 1 (Analysis.width d);
        Alcotest.(check int) "entry" 0 (Dag.entry d);
        Alcotest.(check int) "exit" 4 (Dag.exit_ d)) ]);
    ]
